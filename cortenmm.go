// Package cortenmm is a library-grade reproduction of "CortenMM:
// Efficient Memory Management with Strong Correctness Guarantees"
// (SOSP 2025): a memory management system with a single level of
// abstraction — no VMA layer — where a transactional cursor over the
// page table is the only way to program the (simulated) MMU.
//
// Because the paper's system lives inside an OS kernel and Go cannot,
// the library ships its own hardware substrate: simulated physical
// memory with a buddy allocator and page descriptors, radix page tables
// with x86-64 and RISC-V Sv48 entry formats, per-core TLBs with three
// shootdown protocols, epoch-based RCU, and a multicore machine
// abstraction. On top of that substrate it provides:
//
//   - AddrSpace: the CortenMM address space with both locking protocols
//     (ProtocolRW and ProtocolAdv), on-demand paging, COW fork, file
//     mappings with reverse mapping, swapping and huge pages;
//   - Tx: the transactional interface of the paper's Figure 4
//     (Query/Map/Mark/Unmap/Protect under one atomic range lock);
//   - the baselines the paper evaluates against — a Linux-style
//     VMA-based manager, RadixVM-style per-core page-table replication,
//     and NrOS-style node replication — behind one MM interface;
//   - an executable verification analog of the paper's Verus proofs
//     (see cmd/mmcheck) and a benchmark harness regenerating every
//     figure and table of the evaluation (see cmd/cortenbench).
//
// # Quick start
//
//	machine := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 8})
//	as, err := cortenmm.New(cortenmm.Options{
//		Machine:  machine,
//		Protocol: cortenmm.ProtocolAdv,
//	})
//	if err != nil { ... }
//	va, _ := as.Mmap(0, 1<<20, cortenmm.PermRW, 0) // on-demand, no frames yet
//	_ = as.Store(0, va, 42)                        // page fault backs the page
//	b, _ := as.Load(0, va)                         // b == 42
//	_ = as.Munmap(0, va, 1<<20)
//
// Each call carries the simulated core number of the executing thread;
// use Machine.Run to drive one goroutine per core.
package cortenmm

import (
	"cortenmm/internal/arch"
	"cortenmm/internal/core"
	"cortenmm/internal/cpusim"
	"cortenmm/internal/mem"
	"cortenmm/internal/mm"
	"cortenmm/internal/nros"
	"cortenmm/internal/pt"
	"cortenmm/internal/radixvm"
	"cortenmm/internal/tlb"
	"cortenmm/internal/vma"
)

// Core value and state types, aliased so users never import internal
// packages.
type (
	// Vaddr is a virtual address in the simulated 48-bit address space.
	Vaddr = arch.Vaddr
	// PFN is a physical frame number.
	PFN = arch.PFN
	// Perm is a page permission set.
	Perm = arch.Perm
	// ProtKey is an Intel MPK protection key.
	ProtKey = arch.ProtKey
	// ISA is a page-table entry codec (x86-64 or RISC-V Sv48).
	ISA = arch.ISA
	// Status is the state of one virtual page (Figure 4's Status enum).
	Status = pt.Status
	// StatusKind enumerates Status variants.
	StatusKind = pt.StatusKind
	// Access is a simulated memory-access type.
	Access = pt.Access
	// Translation is a resolved virtual-to-physical mapping.
	Translation = pt.Translation
	// Machine is the simulated multicore machine.
	Machine = cpusim.Machine
	// File is a simulated file with a page cache and reverse mapping.
	File = mem.File
	// BlockDev is a simulated swap device.
	BlockDev = mem.BlockDev
	// AddrSpace is a CortenMM address space.
	AddrSpace = core.AddrSpace
	// Tx is the transactional cursor returned by AddrSpace.Lock; it is
	// the paper's RCursor.
	Tx = core.RCursor
	// Protocol selects a locking protocol.
	Protocol = core.Protocol
	// Options configures an AddrSpace.
	Options = core.Options
	// MM is the interface every memory manager in this module
	// implements (CortenMM and the three baselines).
	MM = mm.MM
	// Features is the Table-2 feature row of a system.
	Features = mm.Features
	// Flags modifies Mmap behaviour.
	Flags = mm.Flags
	// Stats holds an address space's operation counters.
	Stats = mm.Stats
	// TLBMode selects the shootdown protocol.
	TLBMode = tlb.Mode
	// Madviser is the optional madvise(MADV_DONTNEED) surface.
	Madviser = mm.Madviser
	// Swapper is the optional swap-out surface.
	Swapper = mm.Swapper
)

// Permission bits.
const (
	PermRead   = arch.PermRead
	PermWrite  = arch.PermWrite
	PermExec   = arch.PermExec
	PermUser   = arch.PermUser
	PermCOW    = arch.PermCOW
	PermShared = arch.PermShared
	PermRW     = arch.PermRW
	PermRWX    = arch.PermRWX
)

// Address-space geometry.
const (
	PageSize = arch.PageSize
	// UserLo/UserHi bound the range the VA allocators hand out;
	// addresses below UserLo are free for MmapFixed.
	UserLo = cpusim.UserLo
	UserHi = cpusim.UserHi
)

// Locking protocols (§4.1).
const (
	// ProtocolRW is CortenMM_rw: readers-writer locks down the tree.
	ProtocolRW = core.ProtocolRW
	// ProtocolAdv is CortenMM_adv: RCU traversal plus MCS subtree locks.
	ProtocolAdv = core.ProtocolAdv
)

// Mmap flags.
const (
	FlagPopulate = mm.FlagPopulate
	FlagHuge2M   = mm.FlagHuge2M
	FlagHuge1G   = mm.FlagHuge1G
)

// Access types.
const (
	AccessRead  = pt.AccessRead
	AccessWrite = pt.AccessWrite
	AccessExec  = pt.AccessExec
)

// Status kinds.
const (
	StatusInvalid     = pt.StatusInvalid
	StatusMapped      = pt.StatusMapped
	StatusPrivateAnon = pt.StatusPrivateAnon
	StatusPrivateFile = pt.StatusPrivateFile
	StatusSharedAnon  = pt.StatusSharedAnon
	StatusSharedFile  = pt.StatusSharedFile
	StatusSwapped     = pt.StatusSwapped
)

// TLB shootdown protocols (§4.5).
const (
	TLBSync     = tlb.ModeSync
	TLBEarlyAck = tlb.ModeEarlyAck
	TLBLATR     = tlb.ModeLATR
)

// Shared errors.
var (
	ErrSegv         = mm.ErrSegv
	ErrExists       = mm.ErrExists
	ErrBadRange     = mm.ErrBadRange
	ErrNotSupported = mm.ErrNotSupported
)

// MachineConfig sizes the simulated machine.
type MachineConfig struct {
	// Cores is the number of simulated CPUs (default 4).
	Cores int
	// NUMANodes partitions the cores (default 1).
	NUMANodes int
	// Frames is physical memory in 4-KiB frames (default 64Ki = 256MiB).
	Frames int
	// TLB selects the shootdown protocol (default TLBSync).
	TLB TLBMode
}

// NewMachine builds a simulated machine.
func NewMachine(cfg MachineConfig) *Machine {
	return cpusim.New(cpusim.Config{
		Cores:     cfg.Cores,
		NUMANodes: cfg.NUMANodes,
		Frames:    cfg.Frames,
		TLBMode:   cfg.TLB,
	})
}

// New creates a CortenMM address space. Zero-value Options give an
// x86-64 CortenMM_rw space on a fresh default machine.
func New(o Options) (*AddrSpace, error) { return core.New(o) }

// NewFile creates a simulated file of the given size backed by the
// machine's page cache.
func NewFile(m *Machine, name string, size uint64) *File {
	return mem.NewFile(m.Phys, name, size)
}

// NewBlockDev creates a simulated swap device.
func NewBlockDev(name string) *BlockDev { return mem.NewBlockDev(name) }

// X8664 returns the x86-64 PTE codec; set mpk for protection keys.
func X8664(mpk bool) ISA { return arch.X8664{EnableMPK: mpk} }

// RISCV returns the RISC-V Sv48 PTE codec.
func RISCV() ISA { return arch.RISCV{} }

// ARM64 returns the AArch64 VMSAv8-64 PTE codec.
func ARM64() ISA { return arch.ARM64{} }

// NewLinuxBaseline creates a Linux-style two-level (VMA + page table)
// address space on m — the paper's main comparison point.
func NewLinuxBaseline(m *Machine, isa ISA) (MM, error) { return vma.New(m, isa) }

// NewRadixVMBaseline creates a RadixVM-style space with per-core
// page-table replicas on m.
func NewRadixVMBaseline(m *Machine, isa ISA) (MM, error) { return radixvm.New(m, isa) }

// NewNrOSBaseline creates an NrOS-style node-replicated space on m.
func NewNrOSBaseline(m *Machine, isa ISA) (MM, error) { return nros.New(m, isa) }
