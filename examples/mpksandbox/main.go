// mpksandbox: use Intel MPK protection keys (§6.7's MMU-feature port)
// together with the transactional interface to build a crude in-process
// sandbox: a "secret" region is tagged with its own protection key and
// toggled read-only/invisible without per-page mprotect storms — the
// use case protection keys exist for. Also shows W^X flipping via
// mprotect inside a single transaction.
//
//	go run ./examples/mpksandbox
package main

import (
	"fmt"
	"log"

	"cortenmm"
)

func main() {
	machine := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 2})
	as, err := cortenmm.New(cortenmm.Options{
		Machine:  machine,
		Protocol: cortenmm.ProtocolAdv,
		ISA:      cortenmm.X8664(true), // MPK enabled
	})
	if err != nil {
		log.Fatal(err)
	}
	defer as.Destroy(0)

	// A secret region and a scratch region.
	secret, _ := as.Mmap(0, 4*cortenmm.PageSize, cortenmm.PermRW, 0)
	scratch, _ := as.Mmap(0, 4*cortenmm.PageSize, cortenmm.PermRW, 0)
	as.Store(0, secret, 0x42)
	as.Store(0, scratch, 0x17)

	// Tag the secret region with protection key 5 in one transaction;
	// already-mapped pages get the key in their PTEs, unfaulted pages
	// inherit it via the per-PTE metadata.
	tx, err := as.Lock(0, secret, secret+4*cortenmm.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.SetProtKey(secret, secret+4*cortenmm.PageSize, 5); err != nil {
		log.Fatal(err)
	}
	st, _ := tx.Query(secret)
	tx.Close()
	fmt.Printf("secret region tagged: key=%d kind=%v\n", st.Key, st.Kind)

	// Faulting in a previously untouched page carries the key along.
	as.Store(0, secret+2*cortenmm.PageSize, 0x43)
	tx, _ = as.Lock(0, secret, secret+4*cortenmm.PageSize)
	st2, _ := tx.Query(secret + 2*cortenmm.PageSize)
	tx.Close()
	fmt.Printf("late-faulted page: key=%d (inherited from metadata)\n", st2.Key)

	// W^X: flip the scratch region to execute-only in ONE transaction —
	// the query+protect pair is atomic, so no thread can observe the
	// region both writable and executable.
	tx, _ = as.Lock(0, scratch, scratch+4*cortenmm.PageSize)
	if err := tx.Protect(scratch, scratch+4*cortenmm.PageSize, cortenmm.PermRead|cortenmm.PermExec); err != nil {
		log.Fatal(err)
	}
	tx.Close()
	fmt.Printf("scratch W->X flip: write now -> %v\n", as.Touch(0, scratch, cortenmm.AccessWrite))
	fmt.Printf("scratch W->X flip: exec now  -> %v\n", as.Touch(0, scratch, cortenmm.AccessExec))

	// And back (the mapcount==1 pages become writable in place).
	tx, _ = as.Lock(0, scratch, scratch+4*cortenmm.PageSize)
	_ = tx.Protect(scratch, scratch+4*cortenmm.PageSize, cortenmm.PermRW)
	tx.Close()
	b, _ := as.Load(0, scratch)
	fmt.Printf("flip back: data intact = %#x, write -> %v\n", b, as.Touch(0, scratch, cortenmm.AccessWrite))
}
