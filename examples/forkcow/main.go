// forkcow: a fork-based "preforking server" scenario — the parent
// builds a configuration region, forks workers, and copy-on-write keeps
// them isolated while unmodified pages stay shared. Demonstrates fork,
// COW breaks, shared anonymous memory, and the mapcount==1 reuse
// optimization of Figure 8.
//
//	go run ./examples/forkcow
package main

import (
	"fmt"
	"log"

	"cortenmm"
)

func main() {
	machine := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 4, Frames: 1 << 16})
	parent, err := cortenmm.New(cortenmm.Options{Machine: machine, Protocol: cortenmm.ProtocolAdv})
	if err != nil {
		log.Fatal(err)
	}
	defer parent.Destroy(0)

	// Parent config: 16 pages, page i holds value i.
	cfg, err := parent.Mmap(0, 16*cortenmm.PageSize, cortenmm.PermRW, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := parent.Store(0, cfg+cortenmm.Vaddr(i*cortenmm.PageSize), byte(i)); err != nil {
			log.Fatal(err)
		}
	}
	// A shared scoreboard both generations can write.
	board, err := parent.MmapSharedAnon(0, cortenmm.PageSize, cortenmm.PermRW)
	if err != nil {
		log.Fatal(err)
	}

	anonFrames := func() int64 { return machine.Phys.KindFrames(1) } // mem.KindAnon
	before := anonFrames()

	// Fork three workers. Fork copies no data pages: everything becomes
	// copy-on-write inside one whole-address-space transaction.
	workers := make([]cortenmm.MM, 3)
	for w := range workers {
		child, err := parent.Fork(0)
		if err != nil {
			log.Fatal(err)
		}
		workers[w] = child
	}
	fmt.Printf("forked 3 workers: %d new data frames (COW shares everything)\n", anonFrames()-before)

	// Each worker personalizes one config page; only those pages get
	// copied.
	machine.Run(3, func(core int) {
		w := workers[core]
		page := cfg + cortenmm.Vaddr(core*cortenmm.PageSize)
		if err := w.Store(core, page, byte(100+core)); err != nil {
			log.Printf("worker %d: %v", core, err)
		}
		// Tally on the shared board: visible to everyone.
		if err := w.Store(core, board+cortenmm.Vaddr(core), byte(core+1)); err != nil {
			log.Printf("worker %d: %v", core, err)
		}
	})
	fmt.Printf("after 3 private writes: %d copied frames\n", anonFrames()-before)

	// Parent still sees its own values; the shared board shows all.
	for i := 0; i < 3; i++ {
		pv, _ := parent.Load(0, cfg+cortenmm.Vaddr(i*cortenmm.PageSize))
		wv, _ := workers[i].(*cortenmm.AddrSpace).Load(i, cfg+cortenmm.Vaddr(i*cortenmm.PageSize))
		bv, _ := parent.Load(0, board+cortenmm.Vaddr(i))
		fmt.Printf("page %d: parent=%d worker=%d shared-board=%d\n", i, pv, wv, bv)
	}

	var breaks uint64
	for i, w := range workers {
		breaks += w.Stats().COWBreaks.Load()
		w.Destroy(i)
	}
	fmt.Printf("COW breaks across workers: %d (one per private write)\n", breaks)

	// With the children gone, the parent is again the sole owner: its
	// next write reuses the page in place instead of copying (Fig 8).
	b0 := anonFrames()
	if err := parent.Store(0, cfg+5*cortenmm.PageSize, 0xEE); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent write after workers exit: %d new frames (mapcount==1 reuse)\n", anonFrames()-b0)
}
