// allocator: build a tiny user-space malloc on top of the public API,
// demonstrating the pattern behind the paper's dedup/psearchy results
// (§6.4): an allocator that returns memory eagerly (ptmalloc-style)
// turns application churn into mmap/munmap traffic, while a caching
// allocator (tcmalloc-style) trades memory for fewer syscalls. The
// example also exercises swap: cold cached spans are swapped out and
// transparently faulted back.
//
//	go run ./examples/allocator
package main

import (
	"fmt"
	"log"

	"cortenmm"
)

// bumpCache is a toy caching allocator: frees go to a per-size list.
type bumpCache struct {
	as   *cortenmm.AddrSpace
	free map[uint64][]cortenmm.Vaddr
}

func (b *bumpCache) alloc(size uint64) cortenmm.Vaddr {
	if l := b.free[size]; len(l) > 0 {
		va := l[len(l)-1]
		b.free[size] = l[:len(l)-1]
		return va
	}
	va, err := b.as.Mmap(0, size, cortenmm.PermRW, 0)
	if err != nil {
		log.Fatal(err)
	}
	return va
}

func (b *bumpCache) release(va cortenmm.Vaddr, size uint64) {
	b.free[size] = append(b.free[size], va)
}

func main() {
	machine := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 2, Frames: 1 << 15})
	swap := cortenmm.NewBlockDev("swap0")
	as, err := cortenmm.New(cortenmm.Options{
		Machine:  machine,
		Protocol: cortenmm.ProtocolAdv,
		SwapDev:  swap,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer as.Destroy(0)

	const span = 256 << 10 // 256 KiB spans, like a large-object allocator

	// Eager-return style: every free is a munmap.
	for i := 0; i < 8; i++ {
		va, err := as.Mmap(0, span, cortenmm.PermRW, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := as.Store(0, va, byte(i)); err != nil {
			log.Fatal(err)
		}
		if err := as.Munmap(0, va, span); err != nil {
			log.Fatal(err)
		}
	}
	st := as.Stats()
	fmt.Printf("eager allocator:  %d mmaps, %d munmaps (every free hits the MM)\n",
		st.Mmaps.Load(), st.Munmaps.Load())

	// Caching style: frees stay in the allocator.
	cache := &bumpCache{as: as, free: map[uint64][]cortenmm.Vaddr{}}
	m0, u0 := st.Mmaps.Load(), st.Munmaps.Load()
	var last cortenmm.Vaddr
	for i := 0; i < 8; i++ {
		va := cache.alloc(span)
		if err := as.Store(0, va, byte(i)); err != nil {
			log.Fatal(err)
		}
		cache.release(va, span)
		last = va
	}
	fmt.Printf("caching allocator: %d mmaps, %d munmaps (span reused: %v)\n",
		st.Mmaps.Load()-m0, st.Munmaps.Load()-u0, len(cache.free[span]) == 1)

	// The cached span is cold — swap it out and let a fault bring it back.
	n, err := as.SwapOut(0, last, span)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swapped out %d cold pages (blocks in use: %d)\n", n, swap.InUse())
	b, err := as.Load(0, last) // transparent swap-in
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after swap-in: data intact (%d), swap-ins: %d, blocks left: %d\n",
		b, as.Stats().SwapIns.Load(), swap.InUse())
}
