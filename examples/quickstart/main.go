// Quickstart: create a CortenMM address space on a simulated machine,
// map memory on demand, watch page faults back it, and tear it down.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cortenmm"
)

func main() {
	machine := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 4})
	as, err := cortenmm.New(cortenmm.Options{
		Machine:  machine,
		Protocol: cortenmm.ProtocolAdv, // the RCU-based protocol (§4.1)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer as.Destroy(0)

	// mmap 1 MiB of private anonymous memory. Nothing is backed yet:
	// CortenMM records the range in per-PTE metadata (on-demand paging).
	va, err := as.Mmap(0, 1<<20, cortenmm.PermRW, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mmap  -> va=%#x, page faults so far: %d\n", va, as.Stats().PageFaults.Load())

	// The first store page-faults; the handler maps a zeroed frame
	// inside one transaction (Figure 8 of the paper).
	if err := as.Store(0, va, 42); err != nil {
		log.Fatal(err)
	}
	b, err := as.Load(0, va)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store/load -> %d, page faults: %d\n", b, as.Stats().PageFaults.Load())

	// Inspect the address space through the transactional interface:
	// lock a range, query page states, and close the cursor (Drop).
	tx, err := as.Lock(0, va, va+4*cortenmm.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		st, err := tx.Query(va + cortenmm.Vaddr(i*cortenmm.PageSize))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("page %d: %-14v perm=%v\n", i, st.Kind, st.Perm)
	}
	tx.Close()

	// munmap releases frames and queues TLB shootdowns.
	if err := as.Munmap(0, va, 1<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("munmap -> accessing again: %v\n", as.Touch(0, va, cortenmm.AccessRead))
}
