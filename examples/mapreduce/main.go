// mapreduce: the metis-style workload from the paper's evaluation
// (§6.4) run as a library example — every core allocates 8 MiB chunks,
// faults them in while "hashing", and never frees. The example runs the
// same job on CortenMM and on the Linux-style baseline and prints the
// throughput and kernel-time comparison that Figure 16 plots.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"cortenmm"
)

const (
	chunkBytes      = 8 << 20
	chunksPerWorker = 2
	workers         = 4
)

func runJob(name string, machine *cortenmm.Machine, sys cortenmm.MM) {
	var failed atomic.Int32
	var hashSink atomic.Uint64
	start := time.Now()
	machine.Run(workers, func(core int) {
		for c := 0; c < chunksPerWorker; c++ {
			va, err := sys.Mmap(core, chunkBytes, cortenmm.PermRW, 0)
			if err != nil {
				failed.Add(1)
				return
			}
			var h uint64 = 14695981039346656037
			for off := uint64(0); off < chunkBytes; off += cortenmm.PageSize {
				if err := sys.Touch(core, va+cortenmm.Vaddr(off), cortenmm.AccessWrite); err != nil {
					failed.Add(1)
					return
				}
				h = (h ^ off) * 1099511628211 // the "map" work
			}
			hashSink.Store(h)
		}
	})
	elapsed := time.Since(start)
	if failed.Load() != 0 {
		log.Fatalf("%s: job failed", name)
	}
	st := sys.Stats()
	pages := workers * chunksPerWorker * chunkBytes / cortenmm.PageSize
	fmt.Printf("%-12s %6.1f ms   %7.0f faults/ms   kernel %4.1f%%   (%d pages faulted)\n",
		name, float64(elapsed.Microseconds())/1000,
		float64(st.PageFaults.Load())/(float64(elapsed.Microseconds())/1000),
		100*float64(st.KernelNanos.Load())/float64(elapsed.Nanoseconds()*workers),
		pages)
}

func main() {
	fmt.Printf("metis-style map-reduce: %d workers x %d x 8 MiB chunks\n\n", workers, chunksPerWorker)

	m1 := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: workers, Frames: 1 << 16, TLB: cortenmm.TLBLATR})
	corten, err := cortenmm.New(cortenmm.Options{Machine: m1, Protocol: cortenmm.ProtocolAdv, PerCoreVA: true})
	if err != nil {
		log.Fatal(err)
	}
	runJob("cortenmm-adv", m1, corten)
	corten.Destroy(0)

	m2 := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: workers, Frames: 1 << 16})
	linux, err := cortenmm.NewLinuxBaseline(m2, nil)
	if err != nil {
		log.Fatal(err)
	}
	runJob("linux-vma", m2, linux)
	linux.Destroy(0)

	fmt.Println("\nCortenMM's page-fault transactions on disjoint chunks never contend;")
	fmt.Println("the Linux baseline serializes parts of the fault path on the VMA layer.")
}
