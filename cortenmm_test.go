package cortenmm_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"cortenmm"
)

func TestPublicQuickstart(t *testing.T) {
	machine := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 4})
	as, err := cortenmm.New(cortenmm.Options{Machine: machine, Protocol: cortenmm.ProtocolAdv})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Destroy(0)
	va, err := as.Mmap(0, 1<<20, cortenmm.PermRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Store(0, va, 42); err != nil {
		t.Fatal(err)
	}
	b, err := as.Load(0, va)
	if err != nil || b != 42 {
		t.Fatalf("load = %d, %v", b, err)
	}
	if err := as.Munmap(0, va, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := as.Touch(0, va, cortenmm.AccessRead); !errors.Is(err, cortenmm.ErrSegv) {
		t.Errorf("after munmap: %v", err)
	}
}

func TestPublicTransactionalInterface(t *testing.T) {
	as, err := cortenmm.New(cortenmm.Options{Protocol: cortenmm.ProtocolRW})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Destroy(0)
	lo := cortenmm.Vaddr(0x4000_0000)
	tx, err := as.Lock(0, lo, lo+16*cortenmm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Mark(lo, lo+16*cortenmm.PageSize, cortenmm.Status{
		Kind: cortenmm.StatusPrivateAnon,
		Perm: cortenmm.PermRW,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := tx.Query(lo)
	if err != nil || st.Kind != cortenmm.StatusPrivateAnon {
		t.Fatalf("query = %+v, %v", st, err)
	}
	tx.Close()
	if err := as.Touch(0, lo, cortenmm.AccessWrite); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBaselines(t *testing.T) {
	m := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 4, NUMANodes: 2})
	mk := []func() (cortenmm.MM, error){
		func() (cortenmm.MM, error) { return cortenmm.NewLinuxBaseline(m, nil) },
		func() (cortenmm.MM, error) { return cortenmm.NewRadixVMBaseline(m, nil) },
		func() (cortenmm.MM, error) { return cortenmm.NewNrOSBaseline(m, nil) },
	}
	for _, f := range mk {
		sys, err := f()
		if err != nil {
			t.Fatal(err)
		}
		va, err := sys.Mmap(0, 4*cortenmm.PageSize, cortenmm.PermRW, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Store(0, va, 7); err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if err := sys.Munmap(0, va, 4*cortenmm.PageSize); err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		sys.Destroy(0)
	}
}

func TestPublicForkCOW(t *testing.T) {
	as, _ := cortenmm.New(cortenmm.Options{Protocol: cortenmm.ProtocolAdv})
	defer as.Destroy(0)
	va, _ := as.Mmap(0, cortenmm.PageSize, cortenmm.PermRW, 0)
	as.Store(0, va, 1)
	child, err := as.Fork(0)
	if err != nil {
		t.Fatal(err)
	}
	defer child.Destroy(1)
	child.Store(1, va, 2)
	pb, _ := as.Load(0, va)
	cb, _ := child.Load(1, va)
	if pb != 1 || cb != 2 {
		t.Errorf("parent=%d child=%d", pb, cb)
	}
}

func TestPublicRISCV(t *testing.T) {
	as, err := cortenmm.New(cortenmm.Options{ISA: cortenmm.RISCV(), Protocol: cortenmm.ProtocolAdv})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Destroy(0)
	va, _ := as.Mmap(0, cortenmm.PageSize, cortenmm.PermRW, 0)
	if err := as.Store(0, va, 9); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMachineRun(t *testing.T) {
	m := cortenmm.NewMachine(cortenmm.MachineConfig{Cores: 8, Frames: 1 << 15})
	as, _ := cortenmm.New(cortenmm.Options{Machine: m, Protocol: cortenmm.ProtocolAdv, PerCoreVA: true})
	defer as.Destroy(0)
	var bad atomic.Int32
	m.Run(8, func(core int) {
		va, err := as.Mmap(core, 8*cortenmm.PageSize, cortenmm.PermRW, 0)
		if err != nil {
			bad.Add(1)
			return
		}
		if err := as.Store(core, va, byte(core)); err != nil {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("parallel public API usage failed")
	}
}

func TestPublicFeatures(t *testing.T) {
	as, _ := cortenmm.New(cortenmm.Options{})
	defer as.Destroy(0)
	f := as.Features()
	if !f.OnDemandPaging || !f.COW || !f.PageSwapping || !f.HugePage {
		t.Errorf("features = %+v", f)
	}
}
