module cortenmm

go 1.24
