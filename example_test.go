package cortenmm_test

import (
	"fmt"

	"cortenmm"
)

// ExampleNew shows the minimal lifecycle: create, map on demand, fault
// via a store, and tear down.
func ExampleNew() {
	as, err := cortenmm.New(cortenmm.Options{Protocol: cortenmm.ProtocolAdv})
	if err != nil {
		panic(err)
	}
	defer as.Destroy(0)

	va, _ := as.Mmap(0, 1<<20, cortenmm.PermRW, 0)
	fmt.Println("faults before first access:", as.Stats().PageFaults.Load())
	_ = as.Store(0, va, 42)
	b, _ := as.Load(0, va)
	fmt.Println("value:", b, "faults:", as.Stats().PageFaults.Load())
	// Output:
	// faults before first access: 0
	// value: 42 faults: 1
}

// ExampleAddrSpace_Lock shows the transactional interface of the
// paper's Figure 4: query and mark atomically under one range lock.
func ExampleAddrSpace_Lock() {
	as, _ := cortenmm.New(cortenmm.Options{})
	defer as.Destroy(0)

	lo := cortenmm.Vaddr(0x4000_0000)
	tx, _ := as.Lock(0, lo, lo+8*cortenmm.PageSize)
	defer tx.Close()

	_ = tx.Mark(lo, lo+8*cortenmm.PageSize, cortenmm.Status{
		Kind: cortenmm.StatusPrivateAnon,
		Perm: cortenmm.PermRW,
	})
	st, _ := tx.Query(lo)
	fmt.Println(st.Kind, st.Perm)
	// Output:
	// private-anon rw--
}

// ExampleAddrSpace_Fork shows copy-on-write isolation.
func ExampleAddrSpace_Fork() {
	parent, _ := cortenmm.New(cortenmm.Options{Protocol: cortenmm.ProtocolAdv})
	defer parent.Destroy(0)
	va, _ := parent.Mmap(0, cortenmm.PageSize, cortenmm.PermRW, 0)
	_ = parent.Store(0, va, 1)

	child, _ := parent.Fork(0)
	defer child.Destroy(1)
	_ = child.Store(1, va, 2)

	pb, _ := parent.Load(0, va)
	cb, _ := child.Load(1, va)
	fmt.Println("parent:", pb, "child:", cb)
	// Output:
	// parent: 1 child: 2
}

// ExampleAddrSpace_Regions shows the /proc/maps-style layout derived by
// walking the page table (CortenMM keeps no VMA list to print).
func ExampleAddrSpace_Regions() {
	as, _ := cortenmm.New(cortenmm.Options{})
	defer as.Destroy(0)
	_ = as.MmapFixed(0, 0x10000000, 4*cortenmm.PageSize, cortenmm.PermRW, 0)
	_ = as.Store(0, 0x10000000, 1)

	regions, _ := as.Regions(0)
	for _, r := range regions {
		fmt.Println(r)
	}
	// Output:
	// 000010000000-000010004000 rw-- private-anon  resident=1
}
