// Benchmarks regenerating every figure and table of the CortenMM
// evaluation (§6). Each sub-benchmark runs one complete workload
// configuration per iteration and reports the figure's headline metric
// (ops/s, jobs/s, µs/op, or MiB). cmd/cortenbench prints the same data
// as labelled rows.
package cortenmm_test

import (
	"fmt"
	"testing"

	"cortenmm"
	"cortenmm/internal/bench"
	"cortenmm/internal/spec"
	"cortenmm/internal/workload"
)

// benchThreads is the thread sweep used by the multicore benchmarks.
var benchThreads = []int{1, 4}

func microBench(b *testing.B, sys bench.System, op workload.MicroOp, cont workload.Contention, threads int) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		env, err := bench.NewEnv(sys, threads, 1<<17, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.RunMicro(env.Machine, env.Sys, workload.MicroConfig{
			Op: op, Contention: cont, Threads: threads, Iters: 300,
		})
		env.Close()
		if err != nil {
			b.Fatal(err)
		}
		last = res.OpsPerSec()
	}
	b.ReportMetric(last, "mmops/s")
}

// BenchmarkFig1 is the teaser: mmap-PF and unmap scalability.
func BenchmarkFig1(b *testing.B) {
	for _, op := range []workload.MicroOp{workload.OpMmapPF, workload.OpUnmap} {
		for _, threads := range benchThreads {
			for _, sys := range []bench.System{bench.Linux, bench.RadixVM, bench.NrOS, bench.CortenAdv} {
				b.Run(fmt.Sprintf("%s/t%d/%s", op, threads, sys), func(b *testing.B) {
					microBench(b, sys, op, workload.Low, threads)
				})
			}
		}
	}
}

// BenchmarkFig13 is the single-threaded microbenchmark grid.
func BenchmarkFig13(b *testing.B) {
	for _, op := range workload.AllMicroOps {
		for _, sys := range bench.AllSystems {
			if sys == bench.NrOS && op != workload.OpMmapPF && op != workload.OpUnmap {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", op, sys), func(b *testing.B) {
				microBench(b, sys, op, workload.Low, 1)
			})
		}
	}
}

// BenchmarkFig14 is the multithreaded grid with both contention levels.
func BenchmarkFig14(b *testing.B) {
	for _, cont := range []workload.Contention{workload.Low, workload.High} {
		for _, op := range workload.AllMicroOps {
			for _, sys := range []bench.System{bench.Linux, bench.CortenRW, bench.CortenAdv} {
				b.Run(fmt.Sprintf("%s/%s/%s/t4", op, cont, sys), func(b *testing.B) {
					microBench(b, sys, op, cont, 4)
				})
			}
		}
	}
}

func appBench(b *testing.B, sys bench.System, app, alloc string, threads int) {
	b.Helper()
	o := bench.Options{Threads: []int{threads}, Scale: 1}
	var last bench.AppCell
	for i := 0; i < b.N; i++ {
		cell, err := bench.RunApp(sys, app, alloc, threads, o)
		if err != nil {
			b.Fatal(err)
		}
		last = cell
	}
	b.ReportMetric(last.Throughput, "jobs/s")
	b.ReportMetric(last.KernelFrac*100, "kernel%")
}

// BenchmarkFig15 is the single-threaded real-world comparison.
func BenchmarkFig15(b *testing.B) {
	for _, app := range []string{"dedup", "psearchy", "metis", "swaptions"} {
		for _, sys := range []bench.System{bench.Linux, bench.CortenRW, bench.CortenAdv} {
			b.Run(fmt.Sprintf("%s/%s", app, sys), func(b *testing.B) {
				appBench(b, sys, app, "ptmalloc", 1)
			})
		}
	}
}

// BenchmarkFig16 is JVM thread creation and metis with the ablations.
func BenchmarkFig16(b *testing.B) {
	systems := []bench.System{bench.Linux, bench.CortenRW, bench.AdvBase, bench.AdvVPA, bench.CortenAdv}
	for _, app := range []string{"jvm", "metis"} {
		for _, threads := range benchThreads {
			for _, sys := range systems {
				b.Run(fmt.Sprintf("%s/t%d/%s", app, threads, sys), func(b *testing.B) {
					appBench(b, sys, app, "", threads)
				})
			}
		}
	}
}

// BenchmarkFig17 is dedup/psearchy under both allocators.
func BenchmarkFig17(b *testing.B) {
	for _, app := range []string{"dedup", "psearchy"} {
		for _, alloc := range []string{"ptmalloc", "tcmalloc"} {
			for _, sys := range []bench.System{bench.Linux, bench.CortenAdv} {
				b.Run(fmt.Sprintf("%s/%s/t4/%s", app, alloc, sys), func(b *testing.B) {
					appBench(b, sys, app, alloc, 4)
				})
			}
		}
	}
}

// BenchmarkFig18 reports allocator memory footprints.
func BenchmarkFig18(b *testing.B) {
	for _, app := range []string{"dedup", "psearchy"} {
		for _, alloc := range []string{"ptmalloc", "tcmalloc"} {
			b.Run(fmt.Sprintf("%s/%s", app, alloc), func(b *testing.B) {
				o := bench.Options{Threads: []int{4}, Scale: 1}
				var last bench.AppCell
				for i := 0; i < b.N; i++ {
					cell, err := bench.RunApp(bench.Linux, app, alloc, 4, o)
					if err != nil {
						b.Fatal(err)
					}
					last = cell
				}
				b.ReportMetric(float64(last.MappedBytes)/(1<<20), "MiB")
			})
		}
	}
}

// BenchmarkFig19 is the RISC-V portability run.
func BenchmarkFig19(b *testing.B) {
	isa := cortenmm.RISCV()
	for _, op := range workload.AllMicroOps {
		for _, sys := range []bench.System{bench.Linux, bench.CortenAdv} {
			b.Run(fmt.Sprintf("riscv/%s/%s", op, sys), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					env, err := bench.NewEnv(sys, 1, 1<<16, isa)
					if err != nil {
						b.Fatal(err)
					}
					res, err := workload.RunMicro(env.Machine, env.Sys, workload.MicroConfig{
						Op: op, Contention: workload.Low, Threads: 1, Iters: 300,
					})
					env.Close()
					if err != nil {
						b.Fatal(err)
					}
					last = res.OpsPerSec()
				}
				b.ReportMetric(last, "mmops/s")
			})
		}
	}
}

// BenchmarkFig20 is the LMbench fork suite.
func BenchmarkFig20(b *testing.B) {
	for _, op := range workload.AllLMbenchOps {
		for _, sys := range []bench.System{bench.Linux, bench.CortenAdv} {
			b.Run(fmt.Sprintf("%s/%s", op, sys), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					env, err := bench.NewEnv(sys, 2, 1<<16, nil)
					if err != nil {
						b.Fatal(err)
					}
					res, err := workload.RunLMbench(env.Machine, env.Sys,
						func() (cortenmm.MM, error) { return bench.NewSystem(sys, env.Machine, nil) },
						op, 512, 5)
					env.Close()
					if err != nil {
						b.Fatal(err)
					}
					last = float64(res.PerOp.Microseconds())
				}
				b.ReportMetric(last, "us/op")
			})
		}
	}
}

// BenchmarkFig21 is the PARSEC-other normalized run.
func BenchmarkFig21(b *testing.B) {
	for _, app := range []string{"blackscholes", "swaptions", "fluidanimate", "canneal"} {
		for _, sys := range []bench.System{bench.Linux, bench.CortenAdv} {
			b.Run(fmt.Sprintf("%s/%s", app, sys), func(b *testing.B) {
				appBench(b, sys, app, "", 4)
			})
		}
	}
}

// BenchmarkFig22 reports the memory-overhead percentages under metis.
func BenchmarkFig22(b *testing.B) {
	var cells []bench.MemCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = bench.Fig22(bench.Options{Threads: []int{4}, Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		b.ReportMetric(c.OverheadPct(), string(c.System)+"-ovh%")
	}
}

// BenchmarkTable4 measures the model checker (the verification-effort
// analog: states and transitions checked per second).
func BenchmarkTable4(b *testing.B) {
	topo := spec.NewTopology(3, 2)
	m := &spec.AdvModel{
		Topo:       topo,
		Targets:    []int{1, 3, 4},
		Roles:      []spec.Role{spec.RoleUnmapper, spec.RoleLocker, spec.RoleLocker},
		UnmapChild: 3,
	}
	var states, transitions int
	for i := 0; i < b.N; i++ {
		res := spec.Check(m, 5_000_000)
		if res.Violation != nil || res.Deadlock != nil {
			b.Fatal("model check failed")
		}
		states, transitions = res.States, res.Transitions
	}
	b.ReportMetric(float64(states), "states")
	b.ReportMetric(float64(transitions), "transitions")
}

// BenchmarkAblationTLB quantifies the shootdown protocols on an
// unmap-heavy workload (design choice called out in DESIGN.md).
func BenchmarkAblationTLB(b *testing.B) {
	for _, mode := range []string{"sync", "early-ack", "latr"} {
		b.Run(mode, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := bench.AblationTLB(mode, 4, 200)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last, "mmops/s")
		})
	}
}

// BenchmarkAblationCoarseLock contrasts covering-page locking with a
// degenerate root lock.
func BenchmarkAblationCoarseLock(b *testing.B) {
	for _, coarse := range []bool{false, true} {
		name := "covering"
		if coarse {
			name = "rootlock"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := bench.AblationCoarse(coarse, 4, 200)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last, "mmops/s")
		})
	}
}
